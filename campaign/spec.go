// Package campaign executes large fault-injection scenario matrices as
// one managed job: a Spec enumerates axes (FSL script or scenario ×
// seeds × config overrides × workload parameters), and Run fans the
// resulting runs across a bounded worker pool, streaming each finished
// run's record to a JSONL sink and aggregating pass/fail counts and
// latency/throughput percentiles into a campaign Summary.
//
// The executor is deterministic: per-run RNG seeds derive from
// (campaign seed, run index), every run owns a private testbed, and
// records are flushed in run-index order regardless of worker count —
// the same spec and seed produce byte-identical JSONL and summary
// output on 1 or 8 workers. See docs/CAMPAIGNS.md.
package campaign

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"

	"virtualwire"
)

// Duration is a time.Duration that marshals to JSON as a string
// ("250ms", "30s") and unmarshals from either a string or a nanosecond
// number, so hand-written spec files stay readable.
type Duration time.Duration

// D converts to the standard library type.
func (d Duration) D() time.Duration { return time.Duration(d) }

func (d Duration) String() string { return time.Duration(d).String() }

// MarshalJSON renders the duration as a string.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts "30s"-style strings or nanosecond numbers.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("campaign: bad duration %q: %w", s, err)
		}
		*d = Duration(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return err
	}
	*d = Duration(ns)
	return nil
}

// Spec describes a campaign: the cross product of its axes is the run
// matrix. Either populate the Configs/Workloads axes (crossed with the
// seed axis and the shared Script), or list explicit Variants (crossed
// with the seed axis) when the runs don't form a clean product — the
// Figure 7 sweep's baseline/vw/vw+rll triples, for example.
type Spec struct {
	// Version is the wire-schema version of the spec (see SpecVersion
	// and docs/SERVICE.md). Zero means "current"; Normalize stamps it.
	Version int `json:"version,omitempty"`
	// Name labels the campaign in records and the summary.
	Name string `json:"name,omitempty"`
	// Seed is the campaign master seed: per-run seeds derive from it
	// and the run index (DeriveSeed) unless Seeds lists them explicitly.
	Seed int64 `json:"seed"`
	// SeedCount is the size of the derived seed axis (default 1).
	SeedCount int `json:"seed_count,omitempty"`
	// Seeds, when non-empty, is an explicit seed axis overriding
	// SeedCount and derivation.
	Seeds []int64 `json:"seeds,omitempty"`
	// Script is the FSL source shared by every run (Variants may
	// override it per variant). Empty means scriptless soak runs.
	Script string `json:"script,omitempty"`
	// Scenario names the SCENARIO block to stage when Script holds
	// several; empty requires exactly one.
	Scenario string `json:"scenario,omitempty"`
	// Nodes, when set, is an FSL source whose NODE_TABLE defines the
	// hosts; it defaults to the run's script. Scriptless variants (a
	// baseline) need it — or Hosts.
	Nodes string `json:"nodes,omitempty"`
	// Hosts, when positive, bulk-populates every scriptless run with
	// this many generated hosts (Testbed.AddHostGroup) instead of a
	// NODE_TABLE — the 1000-node topology-scale path. Ignored for runs
	// that carry a script.
	Hosts int `json:"hosts,omitempty"`
	// Horizon is the virtual-time horizon of every run (required).
	Horizon Duration `json:"horizon"`
	// Timeout, when positive, bounds each run's real (wall-clock) time;
	// a run that exceeds it is interrupted and counts as transient for
	// the retry policy.
	Timeout Duration `json:"timeout,omitempty"`
	// Retries is how many extra attempts a transiently failing run gets
	// (launch failures, wall-clock timeouts) before its outcome is
	// recorded.
	Retries int `json:"retries,omitempty"`
	// Configs is the testbed-override axis (empty: one default config).
	Configs []ConfigOverride `json:"configs,omitempty"`
	// Workloads is the traffic axis (empty: no workload).
	Workloads []WorkloadSpec `json:"workloads,omitempty"`
	// Variants, when non-empty, replaces the Script × Configs ×
	// Workloads product with an explicit run list (still crossed with
	// the seed axis). Exclusive with Configs and Workloads.
	Variants []Variant `json:"variants,omitempty"`
}

// ConfigOverride selectively overrides virtualwire.Config fields for
// one axis value. Zero/nil fields leave the default untouched.
type ConfigOverride struct {
	// Label names the axis value in records ("ber=1e-6"); derived from
	// the position when empty.
	Label string `json:"label,omitempty"`
	// Medium is "", "switch", "bus" or "fdswitch".
	Medium string `json:"medium,omitempty"`
	// RLL toggles the Reliable Link Layer.
	RLL *bool `json:"rll,omitempty"`
	// RLLWindow overrides the go-back-N window when positive.
	RLLWindow int `json:"rll_window,omitempty"`
	// BitErrorRate overrides the wire corruption probability.
	BitErrorRate *float64 `json:"bit_error_rate,omitempty"`
	// BitsPerSecond overrides the link bandwidth when positive.
	BitsPerSecond float64 `json:"bits_per_second,omitempty"`
	// Propagation overrides the per-segment delay when positive.
	Propagation Duration `json:"propagation,omitempty"`
	// IndexedClassifier toggles the classifier ablation.
	IndexedClassifier *bool `json:"indexed_classifier,omitempty"`
	// Classifier selects the classification strategy axis value:
	// "default", "linear", "indexed", "compiled" or "auto".
	Classifier string `json:"classifier,omitempty"`
	// Shards selects the sharded windowed engine for this axis value:
	// 0/nil legacy single-queue, -1 auto, >= 1 explicit shard count (see
	// virtualwire.Config.Shards). The executor budgets the worker pool so
	// workers x shards stays within GOMAXPROCS.
	Shards *int `json:"shards,omitempty"`
	// Topology replaces the single switch with a generated multi-switch
	// fabric for this axis value.
	Topology *TopologyOverride `json:"topology,omitempty"`
	// TrunkFaults schedules fabric faults — trunk failure/restore/flap,
	// latency/BER degradation, switch crash/restart — for this axis value
	// (requires Topology). See virtualwire.Config.TopologyFaults.
	TrunkFaults []TrunkFault `json:"trunk_faults,omitempty"`
	// Cost overrides the engine processing-cost model.
	Cost *virtualwire.CostModel `json:"cost,omitempty"`
	// MetricsSampleInterval enables per-run metrics sampling.
	MetricsSampleInterval Duration `json:"metrics_sample_interval,omitempty"`
	// LaunchDeadline overrides the control-plane launch deadline.
	LaunchDeadline Duration `json:"launch_deadline,omitempty"`
}

// TopologyOverride selects a generated multi-switch fabric (see
// virtualwire.TopologySpec and docs/TOPOLOGIES.md).
type TopologyOverride struct {
	// Kind is "single", "star", "ring", "fattree" or "random".
	Kind string `json:"kind"`
	// Switches sizes star/ring/random fabrics (0 = auto).
	Switches int `json:"switches,omitempty"`
	// FatTreeK is the fat-tree arity (0 = smallest fit).
	FatTreeK int `json:"fattree_k,omitempty"`
	// ExtraTrunks adds redundant blocked trunks to random fabrics.
	ExtraTrunks int `json:"extra_trunks,omitempty"`
	// TrunkMbps is the trunk bandwidth in Mbps (0 = 10x host rate).
	TrunkMbps float64 `json:"trunk_mbps,omitempty"`
	// WiringSeed seeds the random generator's wiring (0 = 1).
	WiringSeed int64 `json:"wiring_seed,omitempty"`
	// ReconvergeDelay overrides the spanning-tree reconvergence latency
	// after a topology fault (0 = virtualwire.DefaultReconvergeDelay).
	ReconvergeDelay Duration `json:"reconverge_delay,omitempty"`
}

// TrunkFault schedules one fabric fault (see
// virtualwire.TopologyFaultSpec and docs/CAMPAIGNS.md, "Trunk-fault
// axes").
type TrunkFault struct {
	// Kind is "trunk_down", "trunk_up", "trunk_flap", "trunk_degrade",
	// "switch_down" or "switch_up".
	Kind string `json:"kind"`
	// At is the fault's virtual time.
	At Duration `json:"at"`
	// Trunk is the target trunk's wiring index (trunk kinds).
	Trunk int `json:"trunk,omitempty"`
	// Switch is the target switch index (switch kinds).
	Switch int `json:"switch,omitempty"`
	// Period is one full flap cycle (default 100ms).
	Period Duration `json:"period,omitempty"`
	// Count is the number of flap cycles (default 1).
	Count int `json:"count,omitempty"`
	// Propagation, when positive, is trunk_degrade's new propagation.
	Propagation Duration `json:"propagation,omitempty"`
	// BitErrorRate, when non-nil, is trunk_degrade's new BER.
	BitErrorRate *float64 `json:"bit_error_rate,omitempty"`
}

// validate checks the override's enumerated fields without touching a
// real config; errors name the offending sub-field.
func (o *ConfigOverride) validate() error {
	var dummy virtualwire.Config
	return o.apply(&dummy)
}

// apply folds the override into cfg, validating enumerated fields.
// Validation errors are FieldErrors whose paths are relative to the
// override ("medium", "trunk_faults[1].kind"); Spec.Validate prefixes
// them with the override's own position.
func (o *ConfigOverride) apply(cfg *virtualwire.Config) error {
	switch o.Medium {
	case "":
	case "switch":
		cfg.Medium = virtualwire.MediumSwitch
	case "bus":
		cfg.Medium = virtualwire.MediumBus
	case "fdswitch":
		cfg.Medium = virtualwire.MediumSwitchFullDuplex
	default:
		return fieldErrf("medium", "unknown medium %q (want switch, bus or fdswitch)", o.Medium)
	}
	if o.RLL != nil {
		cfg.RLL = *o.RLL
	}
	if o.RLLWindow > 0 {
		cfg.RLLWindow = o.RLLWindow
	}
	if o.BitErrorRate != nil {
		cfg.BitErrorRate = *o.BitErrorRate
	}
	if o.BitsPerSecond > 0 {
		cfg.BitsPerSecond = o.BitsPerSecond
	}
	if o.Propagation > 0 {
		cfg.Propagation = o.Propagation.D()
	}
	if o.IndexedClassifier != nil {
		cfg.IndexedClassifier = *o.IndexedClassifier
	}
	if o.Classifier != "" {
		strat, err := virtualwire.ParseClassifierStrategy(o.Classifier)
		if err != nil {
			return prefixField("classifier", err)
		}
		cfg.Classifier = strat
	}
	if o.Shards != nil {
		cfg.Shards = *o.Shards
	}
	if o.Topology != nil {
		kind, err := virtualwire.ParseTopologyKind(o.Topology.Kind)
		if err != nil {
			return prefixField("topology.kind", err)
		}
		cfg.Topology = &virtualwire.TopologySpec{
			Kind:               kind,
			Switches:           o.Topology.Switches,
			FatTreeK:           o.Topology.FatTreeK,
			ExtraTrunks:        o.Topology.ExtraTrunks,
			TrunkBitsPerSecond: o.Topology.TrunkMbps * 1e6,
			WiringSeed:         o.Topology.WiringSeed,
			ReconvergeDelay:    o.Topology.ReconvergeDelay.D(),
		}
	}
	if len(o.TrunkFaults) > 0 {
		if cfg.Topology == nil {
			return fieldErrf("trunk_faults", "require a topology override")
		}
		cfg.TopologyFaults = make([]virtualwire.TopologyFaultSpec, 0, len(o.TrunkFaults))
		for i := range o.TrunkFaults {
			f := &o.TrunkFaults[i]
			kind, err := virtualwire.ParseTopologyFaultKind(f.Kind)
			if err != nil {
				return prefixField(fmt.Sprintf("trunk_faults[%d].kind", i), err)
			}
			cfg.TopologyFaults = append(cfg.TopologyFaults, virtualwire.TopologyFaultSpec{
				Kind:         kind,
				At:           f.At.D(),
				Trunk:        f.Trunk,
				Switch:       f.Switch,
				Period:       f.Period.D(),
				Count:        f.Count,
				Propagation:  f.Propagation.D(),
				BitErrorRate: f.BitErrorRate,
			})
		}
	}
	if o.Cost != nil {
		cfg.Cost = *o.Cost
	}
	if o.MetricsSampleInterval > 0 {
		cfg.MetricsSampleInterval = o.MetricsSampleInterval.D()
	}
	if o.LaunchDeadline > 0 {
		cfg.LaunchDeadline = o.LaunchDeadline.D()
	}
	return nil
}

// WorkloadSpec describes one traffic axis value. Kind selects the
// workload; the remaining fields map onto the matching facade config.
type WorkloadSpec struct {
	// Label names the axis value in records; derived when empty.
	Label string `json:"label,omitempty"`
	// Kind is "tcpbulk", "udpecho", "udpstream", "incast", "manyflow"
	// or "none".
	Kind string `json:"kind"`
	// From and To name the hosts (client and server).
	From string `json:"from,omitempty"`
	To   string `json:"to,omitempty"`
	// SrcPort and DstPort are the connection/echo/stream ports.
	SrcPort uint16 `json:"src_port,omitempty"`
	DstPort uint16 `json:"dst_port,omitempty"`
	// Bytes is the tcpbulk transfer size.
	Bytes int `json:"bytes,omitempty"`
	// RateMbps paces tcpbulk at an offered rate instead of Bytes.
	RateMbps float64 `json:"rate_mbps,omitempty"`
	// Duration bounds paced tcpbulk transmission.
	Duration Duration `json:"duration,omitempty"`
	// CloseWhenDone sends FIN after Bytes.
	CloseWhenDone bool `json:"close_when_done,omitempty"`
	// DisableCongestionControl runs the deliberately broken TCP sender.
	DisableCongestionControl bool `json:"disable_congestion_control,omitempty"`
	// Count bounds udpecho pings / udpstream datagrams / incast senders.
	Count int `json:"count,omitempty"`
	// Size is the udpecho/udpstream payload size.
	Size int `json:"size,omitempty"`
	// Interval paces udpecho/udpstream.
	Interval Duration `json:"interval,omitempty"`
	// Flows sizes the manyflow mesh (0 = one per host).
	Flows int `json:"flows,omitempty"`
	// Stagger spaces incast/manyflow connection attempts.
	Stagger Duration `json:"stagger,omitempty"`
}

// measurer extracts post-run workload measurements into a RunRecord.
type measurer interface {
	measure(rec *RunRecord)
}

type tcpBulkMeasurer struct{ w *virtualwire.TCPBulk }

func (m tcpBulkMeasurer) measure(rec *RunRecord) {
	rec.DeliveredBytes = m.w.DeliveredBytes()
	rec.GoodputMbps = m.w.GoodputBitsPerSecond() / 1e6
	rec.Retransmissions = int(m.w.SenderStats().Retransmissions)
}

type udpEchoMeasurer struct{ w *virtualwire.UDPEcho }

func (m udpEchoMeasurer) measure(rec *RunRecord) {
	rec.Sent = m.w.Sent()
	rec.Received = m.w.Received()
	rec.MeanRTT = Duration(m.w.MeanRTT())
}

type udpStreamMeasurer struct{ w *virtualwire.UDPStream }

func (m udpStreamMeasurer) measure(rec *RunRecord) {
	rec.Sent = m.w.Sent()
	rec.Received = m.w.Received()
	rec.MaxInterArrival = Duration(m.w.MaxInterArrival())
}

type incastMeasurer struct{ w *virtualwire.Incast }

func (m incastMeasurer) measure(rec *RunRecord) {
	rec.Sent = m.w.Senders()
	rec.Received = m.w.Completed()
	rec.DeliveredBytes = m.w.DeliveredBytes()
}

type manyFlowMeasurer struct{ w *virtualwire.ManyFlow }

func (m manyFlowMeasurer) measure(rec *RunRecord) {
	rec.Sent = m.w.Flows()
	rec.Received = m.w.Completed()
	rec.DeliveredBytes = m.w.DeliveredBytes()
}

// validate rejects malformed workload kinds before any run starts.
func (w *WorkloadSpec) validate() error {
	switch w.Kind {
	case "", "none", "tcpbulk", "udpecho", "udpstream", "incast", "manyflow":
		return nil
	}
	return fieldErrf("kind", "unknown workload kind %q (want tcpbulk, udpecho, udpstream, incast, manyflow or none)", w.Kind)
}

// install stages the workload on tb and returns its measurer (nil for
// "none").
func (w *WorkloadSpec) install(tb *virtualwire.Testbed) (measurer, error) {
	switch w.Kind {
	case "", "none":
		return nil, nil
	case "tcpbulk":
		bulk, err := tb.AddTCPBulk(virtualwire.TCPBulkConfig{
			From: w.From, To: w.To,
			SrcPort: w.SrcPort, DstPort: w.DstPort,
			Bytes:                    w.Bytes,
			RateBitsPerSecond:        w.RateMbps * 1e6,
			Duration:                 w.Duration.D(),
			CloseWhenDone:            w.CloseWhenDone,
			DisableCongestionControl: w.DisableCongestionControl,
		})
		if err != nil {
			return nil, err
		}
		return tcpBulkMeasurer{bulk}, nil
	case "udpecho":
		echo, err := tb.AddUDPEcho(virtualwire.UDPEchoConfig{
			Client: w.From, Server: w.To,
			ServerPort: w.DstPort, ClientPort: w.SrcPort,
			Size: w.Size, Interval: w.Interval.D(), Count: w.Count,
		})
		if err != nil {
			return nil, err
		}
		return udpEchoMeasurer{echo}, nil
	case "udpstream":
		stream, err := tb.AddUDPStream(virtualwire.UDPStreamConfig{
			From: w.From, To: w.To,
			Port: w.DstPort, SrcPort: w.SrcPort,
			Size: w.Size, Interval: w.Interval.D(), Count: w.Count,
		})
		if err != nil {
			return nil, err
		}
		return udpStreamMeasurer{stream}, nil
	case "incast":
		inc, err := tb.AddIncast(virtualwire.IncastConfig{
			To:      w.To,
			Count:   w.Count,
			DstPort: w.DstPort, SrcPort: w.SrcPort,
			Bytes:   w.Bytes,
			Stagger: w.Stagger.D(),
		})
		if err != nil {
			return nil, err
		}
		return incastMeasurer{inc}, nil
	case "manyflow":
		mf, err := tb.AddManyFlow(virtualwire.ManyFlowConfig{
			Flows:    w.Flows,
			BasePort: w.DstPort,
			Bytes:    w.Bytes,
			Stagger:  w.Stagger.D(),
		})
		if err != nil {
			return nil, err
		}
		return manyFlowMeasurer{mf}, nil
	}
	return nil, w.validate()
}

// Variant is one explicit run shape for matrices that are not a clean
// cross product.
type Variant struct {
	// Label names the variant in records; "v<i>" when empty.
	Label string `json:"label,omitempty"`
	// Script overrides Spec.Script: nil inherits it, a pointer to ""
	// selects a scriptless baseline run.
	Script *string `json:"script,omitempty"`
	// Scenario overrides Spec.Scenario for this variant's script.
	Scenario string `json:"scenario,omitempty"`
	// Config is the variant's testbed override.
	Config ConfigOverride `json:"config,omitempty"`
	// Workload is the variant's traffic (nil: none).
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Seed pins the variant's simulation seed instead of deriving it;
	// a multi-element seed axis offsets it by the seed index.
	Seed *int64 `json:"seed,omitempty"`
}

// point is one fully resolved run of the matrix.
type point struct {
	index            int
	label            string
	configLabel      string
	workloadLabel    string
	script, scenario string
	cfg              ConfigOverride
	wl               *WorkloadSpec
	seed             int64
	seedIndex        int

	// compiled is the point's script compiled exactly once per unique
	// (script, scenario) pair during expand; shared read-only by every
	// run and worker. Nil for scriptless points.
	compiled *virtualwire.CompiledScript
	// shapeID identifies the testbed shape (script × scenario × config):
	// points sharing a shapeID can reuse one worker-local testbed via
	// Testbed.Reset instead of rebuilding it per run.
	shapeID int
}

// DeriveSeed maps (campaign seed, run index) to the run's simulation
// seed with a splitmix64 finalizer: well-spread, stable across releases,
// and independent of worker count by construction.
func DeriveSeed(campaignSeed int64, runIndex int) int64 {
	z := uint64(campaignSeed) + (uint64(runIndex)+1)*0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}

// seedAxisLen reports the seed axis size.
func (s *Spec) seedAxisLen() int {
	if len(s.Seeds) > 0 {
		return len(s.Seeds)
	}
	if s.SeedCount > 0 {
		return s.SeedCount
	}
	return 1
}

// Runs reports the total matrix size without expanding it.
func (s *Spec) Runs() int {
	n := s.seedAxisLen()
	if len(s.Variants) > 0 {
		return n * len(s.Variants)
	}
	cfgs, wls := len(s.Configs), len(s.Workloads)
	if cfgs == 0 {
		cfgs = 1
	}
	if wls == 0 {
		wls = 1
	}
	return n * cfgs * wls
}

// expand validates the spec and enumerates the run matrix in canonical
// order: variants (or configs × workloads) major, seed index minor. The
// order — and therefore every derived seed — is independent of the
// worker count.
func (s *Spec) expand() ([]point, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	seedN := s.seedAxisLen()

	// Resolve each shape (script, scenario, config, workload) first so
	// validation fails before any run starts.
	type shape struct {
		label, cfgLabel, wlLabel string
		script, scenario         string
		cfg                      ConfigOverride
		wl                       *WorkloadSpec
		seed                     *int64
		compiled                 *virtualwire.CompiledScript
	}
	var shapes []shape
	if len(s.Variants) > 0 {
		for vi := range s.Variants {
			v := &s.Variants[vi]
			label := v.Label
			if label == "" {
				label = fmt.Sprintf("v%d", vi)
			}
			script := s.Script
			if v.Script != nil {
				script = *v.Script
			}
			scenario := s.Scenario
			if v.Scenario != "" {
				scenario = v.Scenario
			}
			shapes = append(shapes, shape{
				label: label, cfgLabel: v.Config.Label, script: script,
				scenario: scenario, cfg: v.Config, wl: v.Workload, seed: v.Seed,
			})
			if v.Workload != nil {
				shapes[len(shapes)-1].wlLabel = v.Workload.Label
			}
		}
	} else {
		configs := s.Configs
		if len(configs) == 0 {
			configs = []ConfigOverride{{}}
		}
		workloads := make([]*WorkloadSpec, 0, len(s.Workloads))
		if len(s.Workloads) == 0 {
			workloads = append(workloads, nil)
		} else {
			for wi := range s.Workloads {
				workloads = append(workloads, &s.Workloads[wi])
			}
		}
		for ci := range configs {
			cfgLabel := configs[ci].Label
			if cfgLabel == "" && len(configs) > 1 {
				cfgLabel = fmt.Sprintf("cfg%d", ci)
			}
			for _, wl := range workloads {
				wlLabel := ""
				if wl != nil {
					wlLabel = wl.Label
					if wlLabel == "" && len(s.Workloads) > 1 {
						wlLabel = wl.Kind
					}
				}
				label := joinLabels(cfgLabel, wlLabel)
				shapes = append(shapes, shape{
					label: label, cfgLabel: cfgLabel, wlLabel: wlLabel,
					script: s.Script, scenario: s.Scenario,
					cfg: configs[ci], wl: wl,
				})
			}
		}
	}

	// Validate covered every shape's structure; here each unique
	// (script, scenario) pair is compiled exactly once. The resulting
	// CompiledScript — immutable tables plus the pre-encoded INIT blob —
	// is shared by every run of the matrix, so no worker ever re-parses
	// or re-encodes FSL.
	compiledBy := make(map[string]*virtualwire.CompiledScript)
	for i := range shapes {
		sh := &shapes[i]
		if sh.script == "" {
			continue
		}
		key := sh.script + "\x00" + sh.scenario
		cs, ok := compiledBy[key]
		if !ok {
			var err error
			cs, err = virtualwire.CompileScriptScenario(sh.script, sh.scenario)
			if err != nil {
				return nil, err
			}
			compiledBy[key] = cs
		}
		sh.compiled = cs
	}

	pts := make([]point, 0, len(shapes)*seedN)
	for si, sh := range shapes {
		for k := 0; k < seedN; k++ {
			idx := len(pts)
			var seed int64
			switch {
			case sh.seed != nil:
				seed = *sh.seed + int64(k)
			case len(s.Seeds) > 0:
				seed = s.Seeds[k]
			default:
				seed = DeriveSeed(s.Seed, idx)
			}
			label := sh.label
			if seedN > 1 {
				label = joinLabels(label, "s"+strconv.Itoa(k))
			}
			if label == "" {
				label = "run" + strconv.Itoa(idx)
			}
			pts = append(pts, point{
				index: idx, label: label,
				configLabel: sh.cfgLabel, workloadLabel: sh.wlLabel,
				script: sh.script, scenario: sh.scenario,
				cfg: sh.cfg, wl: sh.wl,
				seed: seed, seedIndex: k,
				compiled: sh.compiled, shapeID: si,
			})
		}
	}
	return pts, nil
}

func joinLabels(parts ...string) string {
	var kept []string
	for _, p := range parts {
		if p != "" {
			kept = append(kept, p)
		}
	}
	return strings.Join(kept, "/")
}
