package campaign

// Versioned wire schema for campaign specs.
//
// A Spec travels as JSON between three producers — hand-written files
// fed to vwcampaign -spec, the quick-flag CLI construction, and the
// vwcampaignd submit endpoint — and one consumer, the executor. All of
// them speak the same schema, identified by the "version" field:
//
//   - Version 1 is the schema documented in docs/CAMPAIGNS.md. A spec
//     that omits "version" is version 1 (Normalize stamps it).
//   - Unknown fields are rejected, not ignored: a typoed axis name must
//     fail at submit time, never silently shrink a matrix.
//   - A build rejects every version newer than SpecVersion. Within one
//     version, fields are only ever added (with zero-value defaults
//     preserving old behaviour), so older specs keep parsing; removing
//     or repurposing a field requires bumping SpecVersion.
//
// ParseSpec is the single entry point for untrusted spec bytes; it
// decodes strictly, normalizes defaults and validates, returning errors
// that name the offending field path ("configs[2].medium"). The
// canonical journal identity of a spec is Hash(): the SHA-256 of the
// normalized spec's JSON encoding. See docs/SERVICE.md for the
// compatibility policy.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"

	"virtualwire"
)

// SpecVersion is the wire-schema version this build reads and writes.
const SpecVersion = 1

// FieldError is a spec validation error located by its JSON field path,
// e.g. "configs[2].medium" or "variants[0].workload.kind".
type FieldError struct {
	// Path is the JSON path of the offending field, from the spec root.
	Path string
	// Err describes what is wrong with the field's value.
	Err error
}

func (e *FieldError) Error() string {
	return fmt.Sprintf("campaign: spec field %q: %v", e.Path, e.Err)
}

func (e *FieldError) Unwrap() error { return e.Err }

// fieldErrf builds a FieldError in one line.
func fieldErrf(path, format string, args ...any) error {
	return &FieldError{Path: path, Err: fmt.Errorf(format, args...)}
}

// prefixField roots err under path: FieldErrors get their path extended,
// anything else becomes a FieldError at path.
func prefixField(path string, err error) error {
	if err == nil {
		return nil
	}
	var fe *FieldError
	if errors.As(err, &fe) {
		p := path
		if fe.Path != "" {
			p = path + "." + fe.Path
		}
		return &FieldError{Path: p, Err: fe.Err}
	}
	return &FieldError{Path: path, Err: err}
}

// Normalize canonicalizes every defaultable field in place: the schema
// version is stamped, and the seed axis is resolved (an explicit Seeds
// list fixes SeedCount; otherwise a missing SeedCount becomes 1). It is
// the one place defaults are filled — the quick-flag CLI, the JSON
// paths and the service all call it, so equal effective specs marshal
// to equal bytes and Hash is canonical. Normalize is idempotent.
func (s *Spec) Normalize() {
	if s.Version == 0 {
		s.Version = SpecVersion
	}
	if len(s.Seeds) > 0 {
		s.SeedCount = len(s.Seeds)
	} else if s.SeedCount <= 0 {
		s.SeedCount = 1
	}
}

// Hash is the spec's canonical identity: the hex SHA-256 of its
// normalized JSON encoding. The service journal keys resumable state on
// it, so a spec edited between daemon runs is detected instead of
// silently resumed against a different matrix.
func (s *Spec) Hash() string {
	n := *s
	n.Normalize()
	b, err := json.Marshal(&n)
	if err != nil {
		// Spec holds only marshalable fields; this cannot happen.
		panic(fmt.Sprintf("campaign: marshal spec for hash: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// MaxShards reports the widest per-run shard request across the spec's
// axes — the per-run CPU footprint a scheduler should budget for. Auto
// counts as GOMAXPROCS (its upper bound), legacy single-queue runs as 1.
func (s *Spec) MaxShards() int {
	max := 1
	consider := func(o *ConfigOverride) {
		if o.Shards == nil {
			return
		}
		k := *o.Shards
		if k == virtualwire.ShardsAuto {
			k = runtime.GOMAXPROCS(0)
		}
		if k > max {
			max = k
		}
	}
	for i := range s.Configs {
		consider(&s.Configs[i])
	}
	for i := range s.Variants {
		consider(&s.Variants[i].Config)
	}
	return max
}

// Validate checks everything about the spec that can be checked without
// compiling scripts, returning a FieldError naming the offending field
// path. Run performs it implicitly; the service calls it at submit time
// so a bad spec is rejected before it is journaled or queued.
func (s *Spec) Validate() error {
	if s.Version < 0 || s.Version > SpecVersion {
		return fieldErrf("version", "unsupported spec version %d (this build speaks versions 1 through %d)", s.Version, SpecVersion)
	}
	if s.Horizon <= 0 {
		return fieldErrf("horizon", "must be positive")
	}
	if s.Retries < 0 {
		return fieldErrf("retries", "must not be negative")
	}
	if s.Hosts < 0 {
		return fieldErrf("hosts", "must not be negative")
	}
	if len(s.Variants) > 0 && (len(s.Configs) > 0 || len(s.Workloads) > 0) {
		return fieldErrf("variants", "exclusive with configs and workloads")
	}
	for i := range s.Configs {
		if err := prefixField(fmt.Sprintf("configs[%d]", i), s.Configs[i].validate()); err != nil {
			return err
		}
	}
	for i := range s.Workloads {
		if err := prefixField(fmt.Sprintf("workloads[%d]", i), s.Workloads[i].validate()); err != nil {
			return err
		}
	}
	for i := range s.Variants {
		v := &s.Variants[i]
		path := fmt.Sprintf("variants[%d]", i)
		if err := prefixField(path+".config", v.Config.validate()); err != nil {
			return err
		}
		if v.Workload != nil {
			if err := prefixField(path+".workload", v.Workload.validate()); err != nil {
				return err
			}
		}
		script := s.Script
		if v.Script != nil {
			script = *v.Script
		}
		if script == "" && s.Nodes == "" && s.Hosts <= 0 {
			return fieldErrf(path, "scriptless variant has no hosts (set spec-level nodes or hosts)")
		}
	}
	if len(s.Variants) == 0 && s.Script == "" && s.Nodes == "" && s.Hosts <= 0 {
		return fieldErrf("script", "spec has no hosts (set script, nodes or hosts)")
	}
	return nil
}

// ParseSpec decodes one spec from untrusted JSON: unknown fields and
// trailing data are rejected, the version is checked against
// SpecVersion, defaults are normalized and the result validated. It is
// the shared submit path of the vwcampaign -spec flag and the service
// API, so both reject exactly the same inputs with the same messages.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, decodeSpecError(err)
	}
	if dec.More() {
		return nil, fmt.Errorf("campaign: spec: trailing data after the spec object")
	}
	if s.Version < 0 || s.Version > SpecVersion {
		return nil, fieldErrf("version", "unsupported spec version %d (this build speaks versions 1 through %d)", s.Version, SpecVersion)
	}
	s.Normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// decodeSpecError turns encoding/json's decode failures into errors
// that name the offending field where the decoder knows it.
func decodeSpecError(err error) error {
	var te *json.UnmarshalTypeError
	if errors.As(err, &te) && te.Field != "" {
		return &FieldError{Path: te.Field, Err: fmt.Errorf("cannot decode JSON %s into %s", te.Value, te.Type)}
	}
	if msg := err.Error(); strings.HasPrefix(msg, "json: unknown field ") {
		field := strings.TrimPrefix(msg, "json: unknown field ")
		return fmt.Errorf("campaign: spec: unknown field %s (schema version %d; see docs/SERVICE.md)", field, SpecVersion)
	}
	return fmt.Errorf("campaign: spec: %w", err)
}
