package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"
	"time"
)

// trunkFaultSpec is a scriptless ring campaign with a trunk-failure
// axis: the first tree trunk dies mid-run, spanning-tree failover
// promotes the ring's redundant trunk. The config label is pinned so
// the records carry no trace of the shard count.
func trunkFaultSpec(shards int) Spec {
	sh := shards
	return Spec{
		Name:      "trunk-fault-identity",
		Seed:      19,
		SeedCount: 3,
		Hosts:     24,
		Horizon:   Duration(5 * time.Second),
		Configs: []ConfigOverride{{
			Label:    "ring4/kill+flap",
			Shards:   &sh,
			Topology: &TopologyOverride{Kind: "ring", Switches: 4},
			TrunkFaults: []TrunkFault{
				{Kind: "trunk_down", Trunk: 0, At: Duration(100 * time.Millisecond)},
				{Kind: "trunk_flap", Trunk: 1, At: Duration(400 * time.Millisecond),
					Period: Duration(150 * time.Millisecond), Count: 2},
			},
		}},
		Workloads: []WorkloadSpec{{Kind: "manyflow", Flows: 12, Bytes: 2 << 10}},
	}
}

// TestTrunkFaultAxisIdentity extends the fault surface through the
// campaign layer: a matrix with a trunk failure/flap axis produces
// byte-identical JSONL and summary at 1, 2 and 4 shards and at 1 vs 4
// workers, and the summary rollup shows the failovers happening.
func TestTrunkFaultAxisIdentity(t *testing.T) {
	spec := trunkFaultSpec(1)
	refSink, refSum := runToBytes(t, spec, 1)
	if got := bytes.Count(refSink, []byte("\n")); got != spec.Runs() {
		t.Fatalf("sink lines = %d, want %d", got, spec.Runs())
	}
	for _, shards := range []int{2, 4} {
		gotSink, gotSum := runToBytes(t, trunkFaultSpec(shards), 1)
		if !bytes.Equal(gotSink, refSink) {
			t.Errorf("JSONL at %d shards differs from 1 shard", shards)
		}
		if !bytes.Equal(gotSum, refSum) {
			t.Errorf("summary at %d shards differs from 1 shard", shards)
		}
	}
	gotSink, gotSum := runToBytes(t, trunkFaultSpec(4), 4)
	if !bytes.Equal(gotSink, refSink) {
		t.Error("JSONL from 4 workers x 4 shards differs from serial")
	}
	if !bytes.Equal(gotSum, refSum) {
		t.Error("summary from 4 workers x 4 shards differs from serial")
	}

	var sum Summary
	if err := json.Unmarshal(refSum, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Passed != spec.Runs() {
		t.Fatalf("passed %d/%d", sum.Passed, spec.Runs())
	}
	// Every run kills one tree trunk and flaps another: at least one
	// failover per run must land in the rollup.
	if sum.MetricsTotals["fabric/failovers"] < float64(spec.Runs()) {
		t.Fatalf("fabric/failovers rollup = %v, want >= %d", sum.MetricsTotals["fabric/failovers"], spec.Runs())
	}
}

// Trunk-fault validation fails fast at expand time.
func TestTrunkFaultValidation(t *testing.T) {
	bad := trunkFaultSpec(1)
	bad.Configs[0].TrunkFaults[0].Kind = "melt"
	if _, err := Run(context.Background(), bad, Options{Workers: 1}); err == nil {
		t.Error("unknown trunk fault kind accepted")
	}
	bad = trunkFaultSpec(1)
	bad.Configs[0].Topology = nil
	if _, err := Run(context.Background(), bad, Options{Workers: 1}); err == nil {
		t.Error("trunk faults without a topology accepted")
	}
}
