package virtualwire

import (
	"encoding/json"
	"testing"
	"time"
)

// The hand-rolled MarshalJSON implementations on NodeReport and
// MetricsSummary exist purely to keep reflection out of the per-record
// encode path; their output must stay byte-identical to what
// encoding/json would produce on the same shape. The shadow types below
// have identical fields and tags but no Marshaler, so marshalling them
// exercises the reflected path.

type reflectedNodeReport struct {
	Name    string                        `json:"name"`
	Crashed bool                          `json:"crashed,omitempty"`
	Layers  map[string]map[string]float64 `json:"layers,omitempty"`
}

type reflectedMetricsSummary struct {
	Instruments    int                `json:"instruments"`
	SampledPoints  int                `json:"sampled_points,omitempty"`
	SampleInterval time.Duration      `json:"sample_interval_ns,omitempty"`
	Totals         map[string]float64 `json:"totals,omitempty"`
}

func TestNodeReportMarshalMatchesReflect(t *testing.T) {
	cases := []NodeReport{
		{},
		{Name: "node1"},
		{Name: "node1", Crashed: true},
		{
			Name: "node2",
			Layers: map[string]map[string]float64{
				"engine": {"packets_intercepted": 12, "actions_fired": 0},
				"nic":    {"tx_bytes": 1e21, "tiny": 1.234e-7, "frac": 0.5},
				"tcp":    {},
			},
		},
		// Characters that force the escaping fallback.
		{Name: `we"ird\<&>`, Layers: map[string]map[string]float64{
			"läyer": {"nâme": 1},
		}},
	}
	for _, c := range cases {
		got, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		want, err := json.Marshal(reflectedNodeReport(c))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("NodeReport %+v:\ngot  %s\nwant %s", c, got, want)
		}
	}
}

func TestMetricsSummaryMarshalMatchesReflect(t *testing.T) {
	cases := []MetricsSummary{
		{},
		{Instruments: 42},
		{Instruments: 42, SampledPoints: 7, SampleInterval: 5 * time.Millisecond},
		{
			Instruments: 3,
			Totals: map[string]float64{
				"tcp/segments_sent": 12345,
				"pool/puts":         0,
				"engine/drops":      4.5,
				"big/counter":       1e22,
				"small/counter":     3e-9,
			},
		},
	}
	for _, c := range cases {
		got, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		want, err := json.Marshal(reflectedMetricsSummary(c))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("MetricsSummary %+v:\ngot  %s\nwant %s", c, got, want)
		}
	}
}
