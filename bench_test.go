package virtualwire_test

// One benchmark per table/figure of the paper's evaluation, plus the
// ablation benches DESIGN.md calls out. Figures use reduced sweep sizes
// here so `go test -bench=.` stays brisk; cmd/vwbench runs the full
// paper-scale sweeps. See EXPERIMENTS.md for recorded results.

import (
	"fmt"
	"os"
	"testing"
	"time"

	"virtualwire"
	"virtualwire/internal/experiments"
)

func readScript(b testing.TB, name string) string {
	b.Helper()
	data, err := os.ReadFile("scripts/" + name)
	if err != nil {
		b.Fatalf("read script: %v", err)
	}
	return string(data)
}

// BenchmarkFig5Scenario runs the Section 6.1 case study (SYNACK drop,
// slow-start/congestion-avoidance analysis) once per iteration.
func BenchmarkFig5Scenario(b *testing.B) {
	script := readScript(b, "fig5_tcp_ss_ca.fsl")
	for i := 0; i < b.N; i++ {
		tb, err := virtualwire.New(virtualwire.Config{Seed: int64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		if err := tb.AddNodesFromScript(script); err != nil {
			b.Fatal(err)
		}
		if err := tb.LoadScript(script); err != nil {
			b.Fatal(err)
		}
		if _, err := tb.AddTCPBulk(virtualwire.TCPBulkConfig{
			From: "node1", To: "node2",
			SrcPort: 0x6000, DstPort: 0x4000, Bytes: 80 * 1024,
		}); err != nil {
			b.Fatal(err)
		}
		rep, err := tb.Run(30 * time.Second)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatalf("scenario failed: %+v", rep.Result)
		}
	}
}

// BenchmarkFig6Scenario runs the Section 6.2 case study (Rether node
// failure and ring recovery) once per iteration.
func BenchmarkFig6Scenario(b *testing.B) {
	script := readScript(b, "fig6_rether_failure.fsl")
	for i := 0; i < b.N; i++ {
		tb, err := virtualwire.New(virtualwire.Config{Seed: int64(i + 1), Medium: virtualwire.MediumBus})
		if err != nil {
			b.Fatal(err)
		}
		if err := tb.AddNodesFromScript(script); err != nil {
			b.Fatal(err)
		}
		if err := tb.InstallRether([]string{"node1", "node2", "node3", "node4"}, virtualwire.RetherConfig{}); err != nil {
			b.Fatal(err)
		}
		tb.AddRTStream(0x6000, 0x4000)
		if err := tb.LoadScript(script); err != nil {
			b.Fatal(err)
		}
		if _, err := tb.AddTCPBulk(virtualwire.TCPBulkConfig{
			From: "node1", To: "node4",
			SrcPort: 0x6000, DstPort: 0x4000, Bytes: 4 << 20,
		}); err != nil {
			b.Fatal(err)
		}
		rep, err := tb.Run(2 * time.Minute)
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Passed {
			b.Fatalf("scenario failed: %+v", rep.Result)
		}
	}
}

// BenchmarkFig7Throughput regenerates a reduced Figure 7 sweep per
// iteration and reports the saturated goodputs as custom metrics.
func BenchmarkFig7Throughput(b *testing.B) {
	var last experiments.Fig7Point
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig7(experiments.Fig7Config{
			Seed:        int64(i + 1),
			OfferedMbps: []float64{60, 100},
			Duration:    500 * time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = pts[len(pts)-1]
	}
	b.ReportMetric(last.BaselineMbps, "baseline-Mbps")
	b.ReportMetric(last.VWMbps, "vw-Mbps")
	b.ReportMetric(last.VWRLLMbps, "vw+rll-Mbps")
}

// BenchmarkFig8Latency regenerates a reduced Figure 8 sweep per
// iteration and reports the 25-filter overheads as custom metrics.
func BenchmarkFig8Latency(b *testing.B) {
	var last experiments.Fig8Point
	for i := 0; i < b.N; i++ {
		pts, err := experiments.RunFig8(experiments.Fig8Config{
			Seed:         int64(i + 1),
			FilterCounts: []int{25},
			Pings:        100,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = pts[len(pts)-1]
	}
	b.ReportMetric(last.PctFilters, "pct-filters")
	b.ReportMetric(last.PctActions, "pct-actions")
	b.ReportMetric(last.PctRLL, "pct-rll")
}

// BenchmarkControlPlaneStatusOnly measures control-plane bytes for a
// distributed rule whose term has an integer operand: per Section 5.2 it
// is evaluated at the counter's home and only status *changes* cross the
// wire — one message for the whole run, however many packets A counts.
// The action's counter D lives on node1, so the condition is genuinely
// remote from the term's home (node2).
func BenchmarkControlPlaneStatusOnly(b *testing.B) {
	benchControlPlane(b, `
((A >= 10)) >> INCR_CNTR( D, 1 );
`)
}

// BenchmarkControlPlaneEager measures the same remote rule with a
// counter-counter term spanning nodes: every change of the remote
// operand pushes a value message. The per-op control bytes against
// ...StatusOnly show the win of the paper's optimization.
func BenchmarkControlPlaneEager(b *testing.B) {
	benchControlPlane(b, `
((A > B)) >> INCR_CNTR( D, 1 );
`)
}

func benchControlPlane(b *testing.B, rule string) {
	script := `
FILTER_TABLE
p0: (23 1 0x11), (36 2 0x1b58)
p1: (23 1 0x11), (36 2 0x1b59)
END
NODE_TABLE
node1 00:00:00:00:00:01 10.0.0.1
node2 00:00:00:00:00:02 10.0.0.2
END
SCENARIO ctlplane
A: (p0, node1, node2, RECV)
B: (p1, node2, node1, RECV)
D: (node1)
(TRUE) >> ENABLE_CNTR( A ); ENABLE_CNTR( B );
` + rule + `
END`
	tb, err := virtualwire.New(virtualwire.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		b.Fatal(err)
	}
	if err := tb.LoadScript(script); err != nil {
		b.Fatal(err)
	}
	echo, err := tb.AddUDPEcho(virtualwire.UDPEchoConfig{
		Client: "node1", Server: "node2",
		ServerPort: 7000, ClientPort: 7001, // both directions match filters
		Count: b.N, Interval: 200 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	if _, err := tb.Run(time.Duration(b.N)*200*time.Microsecond + 10*time.Second); err != nil {
		b.Fatal(err)
	}
	if echo.Received() < b.N {
		b.Fatalf("echo received %d/%d", echo.Received(), b.N)
	}
	n1, _ := tb.Node("node1")
	n2, _ := tb.Node("node2")
	total := float64(n1.EngineStats().CtlBytes + n2.EngineStats().CtlBytes)
	b.ReportMetric(total/float64(b.N), "ctl-B/op")
}

// BenchmarkEngineInterception measures the per-packet cost of the full
// engine pipeline (classify + count + cascade) on the real code path —
// the wall-clock counterpart of Figure 8's modeled cost.
func BenchmarkEngineInterception(b *testing.B) {
	script := `
FILTER_TABLE
p0: (23 1 0x11), (36 2 0x1b58)
END
NODE_TABLE
node1 00:00:00:00:00:01 10.0.0.1
node2 00:00:00:00:00:02 10.0.0.2
END
SCENARIO bench
C: (p0, node1, node2, RECV)
(TRUE) >> ENABLE_CNTR( C );
((C = 1)) >> RESET_CNTR( C );
END`
	tb, err := virtualwire.New(virtualwire.Config{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		b.Fatal(err)
	}
	if err := tb.LoadScript(script); err != nil {
		b.Fatal(err)
	}
	echo, err := tb.AddUDPEcho(virtualwire.UDPEchoConfig{
		Client: "node1", Server: "node2", ServerPort: 7000,
		Count: b.N, Interval: 100 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := tb.Run(time.Duration(b.N)*100*time.Microsecond + 10*time.Second); err != nil {
		b.Fatal(err)
	}
	if echo.Received() < b.N {
		b.Fatalf("echo received %d/%d", echo.Received(), b.N)
	}
}

// buildFatTree assembles an n-host fat-tree testbed and forces the
// build (fabric wiring, layer chains, static ARP).
func buildFatTree(b *testing.B, n int, seed int64) *virtualwire.Testbed {
	b.Helper()
	tb, err := virtualwire.New(virtualwire.Config{
		Seed:     seed,
		Topology: &virtualwire.TopologySpec{Kind: virtualwire.TopoFatTree},
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := tb.AddHostGroup("h", n); err != nil {
		b.Fatal(err)
	}
	if err := tb.RunFor(time.Microsecond); err != nil {
		b.Fatal(err)
	}
	return tb
}

// BenchmarkTopologyBuild measures assembling a fat-tree testbed at 100,
// 500 and 1000 hosts: switches, trunks, spanning tree, hosts, layer
// chains and the full-mesh static ARP.
func BenchmarkTopologyBuild(b *testing.B) {
	for _, n := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("fattree/n%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				buildFatTree(b, n, int64(i+1))
			}
		})
	}
}

// BenchmarkTopologyRun measures steady-state forwarding across the
// fabric: a many-flow mesh (one flow per ten hosts) run to completion.
func BenchmarkTopologyRun(b *testing.B) {
	for _, n := range []int{100, 500, 1000} {
		b.Run(fmt.Sprintf("fattree/n%d", n), func(b *testing.B) {
			tb := buildFatTree(b, n, 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tb.Reset(int64(i + 1)); err != nil {
					b.Fatal(err)
				}
				mf, err := tb.AddManyFlow(virtualwire.ManyFlowConfig{
					Flows: n / 10, Bytes: 4 << 10,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tb.Run(2 * time.Second); err != nil {
					b.Fatal(err)
				}
				if mf.Completed() != mf.Flows() {
					b.Fatalf("flows completed %d/%d", mf.Completed(), mf.Flows())
				}
			}
		})
	}
}

// BenchmarkTopologyReset1000 isolates the rewind cost of a 1000-host
// fat-tree testbed — the per-run overhead a campaign pays to reuse the
// built fabric. scripts/check.sh gates its allocs/op.
func BenchmarkTopologyReset1000(b *testing.B) {
	tb := buildFatTree(b, 1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := tb.Reset(int64(i + 1)); err != nil {
			b.Fatal(err)
		}
		if err := tb.RunFor(time.Microsecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardedFatTree measures the windowed parallel engine on a
// 1000-host fat-tree with campus-length trunks (10µs propagation, so
// the conservative lookahead buys usefully wide windows). The serial
// sub-benchmark is the same windowed engine at one shard; shards/2 and
// shards/4 split the fabric across goroutines. Reports are
// byte-identical at every shard count (TestShardedMatchesSerialAcrossSeeds);
// this benchmark measures only the wall-clock side of that bargain.
// scripts/check.sh gates shards/4 at >=1.8x serial on >=4-core machines.
func BenchmarkShardedFatTree(b *testing.B) {
	const hosts = 1000
	for _, bc := range []struct {
		name   string
		shards int
	}{
		{"serial", 1},
		{"shards2", 2},
		{"shards4", 4},
	} {
		b.Run(bc.name, func(b *testing.B) {
			tb, err := virtualwire.New(virtualwire.Config{
				Seed:   1,
				Shards: bc.shards,
				Topology: &virtualwire.TopologySpec{
					Kind:             virtualwire.TopoFatTree,
					TrunkPropagation: 10 * time.Microsecond,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := tb.AddHostGroup("h", hosts); err != nil {
				b.Fatal(err)
			}
			if err := tb.RunFor(time.Microsecond); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := tb.Reset(int64(i + 1)); err != nil {
					b.Fatal(err)
				}
				mf, err := tb.AddManyFlow(virtualwire.ManyFlowConfig{
					Flows: hosts / 10, Bytes: 4 << 10,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tb.Run(2 * time.Second); err != nil {
					b.Fatal(err)
				}
				if mf.Completed() != mf.Flows() {
					b.Fatalf("flows completed %d/%d", mf.Completed(), mf.Flows())
				}
			}
		})
	}
}

// BenchmarkRLLWindow sweeps the RLL window size on a lossy wire,
// reporting delivered goodput — the window/reliability trade-off
// ablation.
func BenchmarkRLLWindow(b *testing.B) {
	for _, window := range []int{2, 8, 32} {
		window := window
		b.Run(map[int]string{2: "w2", 8: "w8", 32: "w32"}[window], func(b *testing.B) {
			var mbps float64
			for i := 0; i < b.N; i++ {
				tb, err := virtualwire.New(virtualwire.Config{
					Seed: int64(i + 1), RLL: true, RLLWindow: window,
					BitErrorRate: 1e-7,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tb.AddHost("a", "00:00:00:00:00:0a", "10.0.0.1"); err != nil {
					b.Fatal(err)
				}
				if _, err := tb.AddHost("b", "00:00:00:00:00:0b", "10.0.0.2"); err != nil {
					b.Fatal(err)
				}
				bulk, err := tb.AddTCPBulk(virtualwire.TCPBulkConfig{
					From: "a", To: "b", SrcPort: 1, DstPort: 2, Bytes: 1 << 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := tb.Run(60 * time.Second); err != nil {
					b.Fatal(err)
				}
				if bulk.DeliveredBytes() != 1<<20 {
					b.Fatalf("delivered %d", bulk.DeliveredBytes())
				}
				mbps = bulk.GoodputBitsPerSecond() / 1e6
			}
			b.ReportMetric(mbps, "goodput-Mbps")
		})
	}
}
