package virtualwire

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// Classifier strategies must be observationally equivalent: the same
// scenario under linear, indexed, compiled and auto dispatch produces
// byte-identical RunReports (same faults, verdict, metrics). The
// strategies differ only in classification cost, which the default
// zero-cost model does not surface.
func TestClassifierStrategiesByteIdentical(t *testing.T) {
	script := readScript(t, "quickstart_drop.fsl")
	cs, err := CompileScript(script)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	for _, strat := range []ClassifierStrategy{
		ClassifierDefault, ClassifierLinear, ClassifierIndexed,
		ClassifierCompiled, ClassifierAuto,
	} {
		tb := buildQuickstart(t, cs, Config{Seed: 77, Classifier: strat})
		addQuickstartBulk(t, tb)
		rep, err := tb.Run(resetTestHorizon)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if !rep.Passed {
			t.Fatalf("%v: scenario failed: %+v", strat, rep.Result)
		}
		got := reportBytes(t, rep)
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("strategy %v changed the run output", strat)
		}
	}
}

// addGroupHosts populates a topology testbed and returns the host names.
func addGroupHosts(t *testing.T, tb *Testbed, n int) []*Node {
	t.Helper()
	nodes, err := tb.AddHostGroup("h", n)
	if err != nil {
		t.Fatal(err)
	}
	return nodes
}

// A star fabric carries an incast: every sender's transfer crosses at
// least one trunk into the receiver's edge switch and completes.
func TestTopologyStarIncast(t *testing.T) {
	tb, err := New(Config{
		Seed:     5,
		Topology: &TopologySpec{Kind: TopoStar, Switches: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	addGroupHosts(t, tb, 40)
	inc, err := tb.AddIncast(IncastConfig{Bytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if got := tb.FabricSwitches(); got != 5 { // 4 edges + core
		t.Fatalf("fabric switches = %d, want 5", got)
	}
	if inc.Senders() != 39 {
		t.Fatalf("senders = %d, want 39", inc.Senders())
	}
	if inc.Completed() != inc.Senders() || inc.Failed() != 0 {
		t.Fatalf("completed %d/%d, failed %d", inc.Completed(), inc.Senders(), inc.Failed())
	}
}

// A ring fabric has a redundant trunk; the spanning tree must block
// exactly one, and traffic (including the flooding before MAC learning
// converges) must terminate rather than storm.
func TestTopologyRingBlockedTrunk(t *testing.T) {
	tb, err := New(Config{
		Seed:     9,
		Topology: &TopologySpec{Kind: TopoRing, Switches: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	addGroupHosts(t, tb, 12)
	mf, err := tb.AddManyFlow(ManyFlowConfig{Flows: 12, Bytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tb.Run(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Completed() != mf.Flows() {
		t.Fatalf("flows completed %d/%d", mf.Completed(), mf.Flows())
	}
	blocked, ok := rep.Metrics.Totals["fabric/blocked_frames"]
	if !ok {
		t.Fatal("no fabric metrics in the report")
	}
	_ = blocked // blocked frames may be zero once learning converges fast
	if len(tb.trunks) != 4 || tb.blockedTrunks() != 1 {
		t.Fatalf("ring trunks=%d blocked=%d, want 4/1", len(tb.trunks), tb.blockedTrunks())
	}
}

// Topology wiring and flow pairing derive from their own seeds, not the
// run seed, so a reset testbed re-runs byte-identically to a fresh one —
// the invariant the campaign executor's reuse path depends on.
func TestTopologyResetMatchesFresh(t *testing.T) {
	build := func() *Testbed {
		tb, err := New(Config{
			Seed:     1,
			Topology: &TopologySpec{Kind: TopoFatTree},
		})
		if err != nil {
			t.Fatal(err)
		}
		addGroupHosts(t, tb, 48)
		return tb
	}
	addLoad := func(tb *Testbed) {
		if _, err := tb.AddManyFlow(ManyFlowConfig{Flows: 24, Bytes: 2 << 10}); err != nil {
			t.Fatal(err)
		}
	}
	seeds := []int64{3, 11, 42}

	reused := build()
	first := true
	for _, seed := range seeds {
		if first {
			first = false
			// Align the first run's seed with the fresh testbed's.
			reused.cfg.Seed = seed
			reused.sched.Reset(seed)
		} else if err := reused.Reset(seed); err != nil {
			t.Fatal(err)
		}
		addLoad(reused)
		repReused, err := reused.Run(3 * time.Second)
		if err != nil {
			t.Fatal(err)
		}

		fresh := build()
		fresh.cfg.Seed = seed
		fresh.sched.Reset(seed)
		addLoad(fresh)
		repFresh, err := fresh.Run(3 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(reportBytes(t, repReused), reportBytes(t, repFresh)) {
			t.Fatalf("seed %d: reset run diverged from fresh run", seed)
		}
	}
}

// Fat-tree auto-sizing picks the smallest even arity whose k^3/4 pod
// capacity covers the hosts, and every generated fabric stays connected.
func TestTopologyGenerators(t *testing.T) {
	cases := []struct {
		spec     TopologySpec
		hosts    int
		switches int
	}{
		{TopologySpec{Kind: TopoStar}, 100, 4},                           // ceil(100/48)=3 edges + core
		{TopologySpec{Kind: TopoRing}, 100, 3},                           // ceil(100/48)=3
		{TopologySpec{Kind: TopoFatTree, FatTreeK: 4}, 16, 20},           // 4 cores + 4*(2+2)
		{TopologySpec{Kind: TopoRandom, Switches: 7, ExtraTrunks: 3}, 50, 7},
	}
	for _, tc := range cases {
		t.Run(tc.spec.Kind.String(), func(t *testing.T) {
			tb, err := New(Config{Topology: &tc.spec})
			if err != nil {
				t.Fatal(err)
			}
			addGroupHosts(t, tb, tc.hosts)
			if err := tb.RunFor(time.Millisecond); err != nil {
				t.Fatal(err)
			}
			if got := tb.FabricSwitches(); got != tc.switches {
				t.Fatalf("switches = %d, want %d", got, tc.switches)
			}
		})
	}

	// Auto fat-tree: 1000 hosts need k=16 (16^3/4 = 1024).
	plan, err := planFabric(&TopologySpec{Kind: TopoFatTree}, 1000)
	if err != nil {
		t.Fatal(err)
	}
	wantSwitches := 8*8 + 16*16 // 64 cores + 16 pods x (8 agg + 8 edge)
	if plan.switches != wantSwitches {
		t.Fatalf("1000-host fat-tree switches = %d, want %d", plan.switches, wantSwitches)
	}
	if len(plan.edges) != 128 {
		t.Fatalf("edge switches = %d, want 128", len(plan.edges))
	}
}

// The headline scale target: a 1000-node fat-tree testbed builds, runs
// traffic across the fabric, and completes inside the test budget.
func TestTopology1000Nodes(t *testing.T) {
	if testing.Short() {
		t.Skip("1000-node build in -short mode")
	}
	tb, err := New(Config{
		Seed:     1,
		Topology: &TopologySpec{Kind: TopoFatTree},
	})
	if err != nil {
		t.Fatal(err)
	}
	addGroupHosts(t, tb, 1000)
	mf, err := tb.AddManyFlow(ManyFlowConfig{Flows: 100, Bytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tb.Run(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if tb.FabricSwitches() != 320 {
		t.Fatalf("switches = %d, want 320", tb.FabricSwitches())
	}
	if mf.Completed() != mf.Flows() {
		t.Fatalf("flows completed %d/%d (failed %d)", mf.Completed(), mf.Flows(), mf.Failed())
	}
	if sw, ok := rep.Metrics.Totals["fabric/forwarded_frames"]; !ok || sw <= 0 {
		t.Fatalf("fabric forwarded %v frames", sw)
	}
	// Reset keeps the wiring: a second run over the rewound fabric
	// completes as well.
	if err := tb.Reset(2); err != nil {
		t.Fatal(err)
	}
	mf2, err := tb.AddManyFlow(ManyFlowConfig{Flows: 100, Bytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if mf2.Completed() != mf2.Flows() {
		t.Fatalf("reset flows completed %d/%d", mf2.Completed(), mf2.Flows())
	}
}

// Host-group identities are deterministic and unique.
func TestAddHostGroupIdentities(t *testing.T) {
	tb, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	nodes := addGroupHosts(t, tb, 3)
	for i, n := range nodes {
		wantName := fmt.Sprintf("h%04d", i+1)
		if n.Name() != wantName {
			t.Fatalf("node %d name %q, want %q", i, n.Name(), wantName)
		}
	}
	if nodes[1].IP() != "10.0.0.2" {
		t.Fatalf("second host IP %s, want 10.0.0.2", nodes[1].IP())
	}
	if nodes[2].MAC() != "02:56:57:00:00:03" {
		t.Fatalf("third host MAC %s", nodes[2].MAC())
	}
}
