package virtualwire

// Sharded conservative parallel execution.
//
// Config.Shards selects the windowed multi-queue engine: the fabric's
// switches — each with its attached hosts, NICs, stacks and engine
// state — are partitioned into shards, every shard owns a scheduler
// (the same monomorphic 4-ary heap) and a frame pool, and shards run on
// parallel goroutines synchronized by conservative time windows. Each
// window executes all events strictly below
//
//	E = min( m + L,  earliest in-flight trunk arrival,  m + cap )
//
// where m is the global minimum pending event time across shards, L is
// the minimum over trunks of (propagation + minimum-frame serialization
// + inter-frame gap) — the classic conservative lookahead; no decision
// taken at or after m can be observed across a trunk before m+L — and
// cap bounds the window when the fabric has no trunks at all. Frames
// crossing a trunk are deposited into timestamped per-trunk mailboxes
// and drained at the barrier in canonical order (trunk wiring order,
// A→B before B→A, FIFO within a direction).
//
// The central design decision is that the windowed engine is
// *shard-count invariant*: every trunk becomes a mailbox channel even
// when both ends land in the same shard, the window bound E is computed
// from global, partition-independent quantities, and every random draw
// comes from a per-component generator derived from (seed, construction
// order) rather than from a scheduler's shared stream. The partition
// therefore only chooses which goroutine executes which switch's
// events — unobservable in any output — so a run is byte-identical at
// 1, 2, 4 or any other shard count, and the serial-vs-sharded identity
// property reduces to Shards:1 vs Shards:K of the same algorithm.
// Shards:0 (the default) keeps the classic single-queue engine
// untouched, bit-compatible with every previous release.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"virtualwire/internal/ether"
	"virtualwire/internal/sim"
)

// ShardsAuto asks the testbed to pick the shard count: min(GOMAXPROCS,
// edge switches). On a single-CPU machine — or a single-switch fabric —
// auto resolves to one shard, which runs inline with no goroutines or
// barriers, so auto is always safe to set.
const ShardsAuto = -1

// shardWindowCap bounds a window when the fabric has no trunk channels
// (single switch, Shards >= 1): without a lookahead constraint a window
// could swallow the whole horizon, delaying scenario-finish and
// cancellation checks, which happen at barriers. The cap is a constant,
// so it is shard-count invariant. With trunks, the lookahead L (tens of
// microseconds at most) is always the tighter bound.
const shardWindowCap = time.Millisecond

// shardRuntime is the sharded engine's state, created at build time.
type shardRuntime struct {
	count    int
	scheds   []*sim.Scheduler   // scheds[0] == tb.sched
	pools    []*ether.FramePool // pools[0] == tb.pool
	channels []*ether.TrunkChannel
	swShard  []int // switch index -> shard (planner output)
	set      *sim.ShardSet

	// lookahead is min over channels of Lookahead(); 0 when no channels.
	lookahead time.Duration

	// rands are the per-component generators, in assignment order (see
	// assignComponentRands); kept so Reset can reseed without
	// allocating.
	rands []*rand.Rand

	// startPending is set by the controller's OnStarted upcall (which
	// fires on the control node's shard mid-window) and consumed by the
	// coordinator at the next barrier, where workload setup can run
	// single-threaded with every shard parked.
	startPending bool
}

// shardMode reports whether this testbed uses the windowed engine.
func (tb *Testbed) shardMode() bool { return tb.cfg.Shards != 0 }

// resolveShardCount maps Config.Shards to a concrete count given the
// number of host-bearing switches.
func (tb *Testbed) resolveShardCount(edges int) int {
	k := tb.cfg.Shards
	if k == ShardsAuto {
		k = runtime.GOMAXPROCS(0)
	}
	if k > edges {
		k = edges
	}
	if k < 1 {
		k = 1
	}
	return k
}

// initShardRuntime creates the per-shard schedulers and pools. Shard 0
// reuses the testbed's own, so on a one-shard testbed the windowed
// engine touches exactly the objects the legacy engine would.
func (tb *Testbed) initShardRuntime(k int) {
	sr := &shardRuntime{count: k}
	sr.scheds = make([]*sim.Scheduler, k)
	sr.pools = make([]*ether.FramePool, k)
	sr.scheds[0] = tb.sched
	sr.pools[0] = tb.pool
	for i := 1; i < k; i++ {
		// Shard schedulers never serve Rand() draws in sharded mode
		// (components carry pinned generators), but seed them
		// deterministically anyway.
		sr.scheds[i] = sim.NewScheduler(deriveShardSeed(tb.cfg.Seed, uint64(i)))
		sr.pools[i] = ether.NewFramePool()
	}
	sr.set = sim.NewShardSet(sr.scheds)
	tb.shards = sr
}

func (tb *Testbed) shardSched(i int) *sim.Scheduler {
	if tb.shards == nil {
		return tb.sched
	}
	return tb.shards.scheds[i]
}

func (tb *Testbed) shardPool(i int) *ether.FramePool {
	if tb.shards == nil {
		return tb.pool
	}
	return tb.shards.pools[i]
}

// bindNodeShard rebinds a host's stack onto its shard's scheduler and
// pool. Called from buildFabric before the host is attached to its edge
// switch and before any layer chain is assembled, so no timers or
// events exist yet; layers constructed later (taps, rether, TCP) read
// the host's scheduler and land on the right shard automatically.
func (tb *Testbed) bindNodeShard(n *Node, sid int) {
	sched := tb.shardSched(sid)
	n.host.SetScheduler(sched)
	n.engine.SetScheduler(sched)
	if n.rll != nil {
		n.rll.SetScheduler(sched)
		n.rll.SetPool(tb.shardPool(sid))
	}
}

// deriveShardSeed is the splitmix64 finalizer over (seed, id): fixed,
// platform-independent, and scrambling enough that per-component
// streams are uncorrelated.
func deriveShardSeed(seed int64, id uint64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*(id+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E9B5
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// assignComponentRands pins a deterministic generator on every
// randomness-drawing component, in a fixed construction-order walk:
// switch port segments (switches in index order, ports in index order),
// then engines in node order. In the legacy engine those draws share
// the scheduler's single stream, whose draw order depends on event
// interleaving — fine serially, partition-dependent under sharding.
// First call allocates the generators; later calls (Reset) reseed them
// in place, keeping the reset path allocation-free.
func (tb *Testbed) assignComponentRands(seed int64) {
	sr := tb.shards
	alloc := sr.rands == nil
	id := uint64(0)
	next := func() *rand.Rand {
		s := deriveShardSeed(seed, id)
		var r *rand.Rand
		if alloc {
			r = rand.New(rand.NewSource(s))
			sr.rands = append(sr.rands, r)
		} else {
			r = sr.rands[id]
			r.Seed(s)
		}
		id++
		return r
	}
	assign := func(sw *ether.Switch) {
		for p := 0; p < sw.NumPorts(); p++ {
			sw.SetPortRand(p, next())
		}
	}
	if tb.sw != nil {
		assign(tb.sw)
	}
	for _, sw := range tb.fabric {
		assign(sw)
	}
	for _, n := range tb.nodes {
		n.engine.SetRand(next())
	}
}

// validateShardConfig rejects configurations the windowed engine cannot
// run with shard-count-invariant (or data-race-free) semantics.
func validateShardConfig(cfg *Config) error {
	if cfg.Shards == 0 {
		return nil
	}
	if cfg.Shards < ShardsAuto {
		return fmt.Errorf("virtualwire: invalid shard count %d", cfg.Shards)
	}
	if cfg.Medium == MediumBus {
		return fmt.Errorf("virtualwire: sharded execution requires a switch medium (a shared bus is one segment)")
	}
	if cfg.TraceCapacity > 0 {
		return fmt.Errorf("virtualwire: sharded execution does not support TraceCapacity (the trace buffer is shared across shards)")
	}
	if cfg.MetricsSampleInterval > 0 {
		return fmt.Errorf("virtualwire: sharded execution does not support MetricsSampleInterval (sampling gathers cross-shard state mid-run)")
	}
	return nil
}

// shardSchedulerSnapshot aggregates the per-shard schedulers into the
// single "testbed"/"scheduler" source, summing counters and gauges so
// totals equal the legacy engine's single-queue readings at any shard
// count.
func (tb *Testbed) shardSchedulerSnapshot() MetricsSnapshot {
	var exec, schd, rec, pend, free float64
	for _, s := range tb.shards.scheds {
		sn := s.Snapshot()
		exec += snapVal(sn, "events_executed")
		schd += snapVal(sn, "events_scheduled")
		rec += snapVal(sn, "events_recycled")
		pend += snapVal(sn, "events_pending")
		free += snapVal(sn, "free_list_len")
	}
	var out MetricsSnapshot
	out.Counter("events_executed", uint64(exec))
	out.Counter("events_scheduled", uint64(schd))
	out.Counter("events_recycled", uint64(rec))
	out.Gauge("events_pending", pend)
	out.Gauge("free_list_len", free)
	return out
}

// shardPoolSnapshot aggregates the per-shard frame pools into the
// single "testbed"/"pool" source.
func (tb *Testbed) shardPoolSnapshot() MetricsSnapshot {
	var gets, hits, puts uint64
	var free float64
	for _, p := range tb.shards.pools {
		gets += p.Gets
		hits += p.Hits
		puts += p.Puts
		free += snapVal(p.Snapshot(), "free_frames")
	}
	var out MetricsSnapshot
	out.Counter("gets", gets)
	out.Counter("hits", hits)
	out.Counter("puts", puts)
	out.Gauge("free_frames", free)
	return out
}

func snapVal(sn MetricsSnapshot, name string) float64 {
	v, _ := sn.Get(name)
	return v
}

// finishShardBuild completes sharded wiring after the layer chains are
// assembled: ensures the runtime exists even without a fabric (single
// switch, Shards >= 1), computes the fabric-wide lookahead and pins the
// per-component generators.
func (tb *Testbed) finishShardBuild() {
	if tb.shards == nil {
		tb.initShardRuntime(1)
	}
	tb.recomputeShardLookahead()
	tb.assignComponentRands(tb.cfg.Seed)
}

// earliestTrunk returns the earliest in-flight cross-trunk arrival.
func (sr *shardRuntime) earliestTrunk() (time.Duration, bool) {
	var min time.Duration
	any := false
	for _, ch := range sr.channels {
		if t, ok := ch.EarliestPending(); ok && (!any || t < min) {
			min, any = t, true
		}
	}
	return min, any
}

// dispatchWorkloads runs every workload's setup at a barrier (shards
// parked, all clocks equal) and schedules its per-node run parts onto
// the owning shards. Setup — Listen/Bind registrations, histogram
// creation — executes single-threaded here in workload order, so
// registry and socket-table mutations stay deterministic and race-free;
// only the traffic-driving closures run on shard goroutines.
func (tb *Testbed) dispatchWorkloads() error {
	at := tb.sched.Now()
	for _, w := range tb.workloads {
		sw, ok := w.(shardedWorkload)
		if !ok {
			return fmt.Errorf("virtualwire: workload %T does not support sharded execution", w)
		}
		parts, err := sw.parts(tb)
		if err != nil {
			return err
		}
		for _, p := range parts {
			run := p.run
			p.node.host.Sched.At(at, "vw.workload", run)
		}
	}
	return nil
}

// workloadPart is one shard-local piece of a workload: run fires on the
// named node's shard at start time and must only touch state owned by
// that node's side of the workload.
type workloadPart struct {
	node *Node
	run  func()
}

// shardedWorkload is implemented by workloads that can decompose into
// per-shard parts. parts is called at a barrier: setup may touch any
// testbed state; the returned run closures may not reach across shards.
type shardedWorkload interface {
	workload
	parts(tb *Testbed) ([]workloadPart, error)
}

// runWindowed drives the conservative window loop until the deadline,
// the scenario finishes, or the context fires. It returns (ctxErr,
// fatal): ctxErr is the context's error when cancellation interrupted
// the run (the caller assembles a partial report, mirroring the legacy
// engine); fatal aborts the run.
//
// Events at exactly the deadline execute (RunUntil semantics: the final
// window ends at deadline+1ns) and every shard clock lands on the
// deadline, so a subsequent RunFor/Run continues from there.
func (tb *Testbed) runWindowed(ctx context.Context, deadline time.Duration) (error, error) {
	sr := tb.shards
	done := ctx.Done()
	sr.set.Start()
	defer sr.set.Stop()
	for {
		if done != nil {
			select {
			case <-done:
				return ctx.Err(), nil
			default:
			}
		}
		if tb.ctl != nil && tb.ctl.Finished() {
			return nil, nil
		}
		if sr.startPending {
			sr.startPending = false
			if err := tb.dispatchWorkloads(); err != nil {
				return nil, err
			}
		}
		m, ok := sr.set.PeekMin()
		if !ok {
			// Every queue is empty and (since deposits are drained into
			// queues at each barrier) no frame is in flight. Topology
			// faults due within the horizon still apply — they mutate
			// fabric state (and journal) even with no traffic, and a
			// restore could in principle re-arm activity, so re-enter the
			// loop after applying any.
			if tb.applyTopoFaultsUpTo(deadline) {
				continue
			}
			for _, s := range sr.scheds {
				if err := s.RunWindow(0, deadline); err != nil {
					return nil, err
				}
			}
			return nil, nil
		}
		// Apply topology faults due at or before the window floor, with
		// every shard parked. Applying before the bound computation
		// matters: a fault can change the live-trunk set and with it the
		// lookahead below.
		tb.applyTopoFaultsUpTo(m)
		end := m + shardWindowCap
		if sr.lookahead > 0 {
			if la := m + sr.lookahead; la < end {
				end = la
			}
		}
		// The in-flight-arrival bound applies whenever trunks exist, not
		// only when lookahead is positive: with every trunk failed the
		// lookahead is zero, yet frames committed before the failure are
		// still propagating and must be delivered before any event at or
		// after their arrival runs.
		if len(sr.channels) > 0 {
			if t, ok := sr.earliestTrunk(); ok && t < end {
				end = t
			}
		}
		// Never let a window cross the next fault or reconvergence time:
		// the live-trunk set (and lookahead) must be constant within a
		// window for the bound to hold — and for shard-count invariance.
		if bt, ok := tb.nextTopoBoundary(); ok && bt < end {
			end = bt
		}
		if end <= m {
			// Unreachable in practice (every bound above is provably > m),
			// but a stall here would loop forever; the clamp is computed
			// from the same global quantities, so it stays shard-invariant.
			end = m + 1
		}
		past := end > deadline
		if past {
			end = deadline + 1
		}
		clockTo := end
		if clockTo > deadline {
			clockTo = deadline
		}
		if err := sr.set.RunWindow(end, clockTo); err != nil {
			return nil, err
		}
		for _, ch := range sr.channels {
			ch.Drain()
		}
		if past {
			return nil, nil
		}
	}
}

// runShardedContext is RunContext's windowed-engine counterpart.
func (tb *Testbed) runShardedContext(ctx context.Context, horizon time.Duration) (RunReport, error) {
	sr := tb.shards
	start := tb.sched.Now()
	sr.startPending = false
	if tb.ctl != nil {
		tb.ctl.OnStarted = func() { sr.startPending = true }
		if err := tb.ctl.Launch(); err != nil {
			return RunReport{}, err
		}
	} else {
		sr.startPending = true
	}
	ctxErr, err := tb.runWindowed(ctx, start+horizon)
	if err != nil {
		return RunReport{}, err
	}
	rep := tb.assembleRunReport(start, sr.set.Executed())
	return finishRunReport(rep, ctxErr)
}
