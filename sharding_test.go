package virtualwire

import (
	"bytes"
	"testing"
	"time"
)

// shardTopologies are the fabric shapes the identity property sweeps:
// every kind exercises a different trunk pattern (hub-and-spoke, a
// blocked redundant trunk, multi-stage up/down paths).
var shardTopologies = []struct {
	name  string
	spec  TopologySpec
	hosts int
}{
	{"star", TopologySpec{Kind: TopoStar, Switches: 4}, 24},
	{"ring", TopologySpec{Kind: TopoRing, Switches: 4}, 24},
	{"fattree", TopologySpec{Kind: TopoFatTree, FatTreeK: 4}, 16},
}

// shardedManyFlowReport builds a scriptless fabric testbed at the given
// shard count, drives a ManyFlow mesh across it and returns the
// RunReport bytes.
func shardedManyFlowReport(t *testing.T, spec TopologySpec, hosts int, seed int64, shards int) []byte {
	t.Helper()
	topo := spec
	tb, err := New(Config{Seed: seed, Shards: shards, Topology: &topo})
	if err != nil {
		t.Fatal(err)
	}
	addGroupHosts(t, tb, hosts)
	mf, err := tb.AddManyFlow(ManyFlowConfig{Flows: hosts / 2, Bytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tb.Run(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if mf.Completed() != mf.Flows() {
		t.Fatalf("seed %d shards %d: flows completed %d/%d (failed %d)",
			seed, shards, mf.Completed(), mf.Flows(), mf.Failed())
	}
	return reportBytes(t, rep)
}

// TestShardedMatchesSerialAcrossSeeds is the tentpole property: the
// windowed engine produces byte-identical RunReports at 1, 2 and 4
// shards, across 100+ (seed, topology) combinations. Shard count only
// chooses which goroutine executes which switch's events; nothing
// observable may depend on it.
func TestShardedMatchesSerialAcrossSeeds(t *testing.T) {
	seedCount := 36
	if testing.Short() {
		seedCount = 4
	}
	for _, topo := range shardTopologies {
		t.Run(topo.name, func(t *testing.T) {
			for i := 0; i < seedCount; i++ {
				seed := int64(i*7919 + 13)
				serial := shardedManyFlowReport(t, topo.spec, topo.hosts, seed, 1)
				for _, shards := range []int{2, 4} {
					got := shardedManyFlowReport(t, topo.spec, topo.hosts, seed, shards)
					if !bytes.Equal(got, serial) {
						t.Fatalf("seed %d: %d-shard report diverges from serial\nserial:\n%s\nsharded:\n%s",
							seed, shards, serial, got)
					}
				}
			}
		})
	}
}

// TestShardedScriptedMatchesSerial covers the control plane: a scripted
// scenario (controller launch, INIT distribution, fault injection,
// verdict) over a two-edge star, with the client and server on
// different shards.
func TestShardedScriptedMatchesSerial(t *testing.T) {
	script := readScript(t, "quickstart_drop.fsl")
	cs, err := CompileScript(script)
	if err != nil {
		t.Fatal(err)
	}
	seedCount := 10
	if testing.Short() {
		seedCount = 3
	}
	run := func(seed int64, shards int) []byte {
		topo := TopologySpec{Kind: TopoStar, Switches: 2}
		tb := buildQuickstart(t, cs, Config{Seed: seed, Shards: shards, Topology: &topo})
		addQuickstartBulk(t, tb)
		rep, err := tb.Run(resetTestHorizon)
		if err != nil {
			t.Fatalf("seed %d shards %d: %v", seed, shards, err)
		}
		if !rep.Passed {
			t.Fatalf("seed %d shards %d: scenario failed: %+v", seed, shards, rep.Result)
		}
		return reportBytes(t, rep)
	}
	for i := 0; i < seedCount; i++ {
		seed := int64(i*104729 + 7)
		serial := run(seed, 1)
		if got := run(seed, 2); !bytes.Equal(got, serial) {
			t.Fatalf("seed %d: 2-shard scripted report diverges from serial\nserial:\n%s\nsharded:\n%s",
				seed, serial, got)
		}
	}
}

// TestShardedWorkloadsMatchSerial sweeps the remaining workload kinds
// (TCP bulk with pacing, UDP echo, UDP stream, incast) through the
// sharded engine at 1 vs 4 shards on a star fabric.
func TestShardedWorkloadsMatchSerial(t *testing.T) {
	addLoad := map[string]func(t *testing.T, tb *Testbed, nodes []*Node){
		"tcpbulk-paced": func(t *testing.T, tb *Testbed, nodes []*Node) {
			if _, err := tb.AddTCPBulk(TCPBulkConfig{
				From: nodes[0].Name(), To: nodes[1].Name(),
				SrcPort: 0x6000, DstPort: 0x4000,
				RateBitsPerSecond: 2e6, Duration: 200 * time.Millisecond,
				CloseWhenDone: true,
			}); err != nil {
				t.Fatal(err)
			}
		},
		"udpecho": func(t *testing.T, tb *Testbed, nodes []*Node) {
			if _, err := tb.AddUDPEcho(UDPEchoConfig{
				Client: nodes[0].Name(), Server: nodes[1].Name(),
				ServerPort: 0x5300, Count: 50,
			}); err != nil {
				t.Fatal(err)
			}
		},
		"udpstream": func(t *testing.T, tb *Testbed, nodes []*Node) {
			if _, err := tb.AddUDPStream(UDPStreamConfig{
				From: nodes[0].Name(), To: nodes[1].Name(),
				Port: 0x5400, Count: 50,
			}); err != nil {
				t.Fatal(err)
			}
		},
		"incast": func(t *testing.T, tb *Testbed, nodes []*Node) {
			if _, err := tb.AddIncast(IncastConfig{Bytes: 4 << 10}); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, load := range addLoad {
		t.Run(name, func(t *testing.T) {
			run := func(shards int) []byte {
				tb, err := New(Config{
					Seed:   21,
					Shards: shards,
					Topology: &TopologySpec{
						Kind: TopoStar, Switches: 4,
					},
				})
				if err != nil {
					t.Fatal(err)
				}
				nodes := addGroupHosts(t, tb, 16)
				load(t, tb, nodes)
				rep, err := tb.Run(2 * time.Second)
				if err != nil {
					t.Fatal(err)
				}
				return reportBytes(t, rep)
			}
			serial := run(1)
			if got := run(4); !bytes.Equal(got, serial) {
				t.Fatalf("4-shard report diverges from serial\nserial:\n%s\nsharded:\n%s", serial, got)
			}
		})
	}
}

// TestShardedResetKeepsTopologyState extends the reset invariants to
// sharded fabrics: across Reset cycles on a ring (which carries one
// redundant, spanning-tree-blocked trunk), the blocked trunk stays
// blocked, every trunk mailbox drains empty, the rewind allocates
// nothing, and the re-run stays byte-identical to the first.
func TestShardedResetKeepsTopologyState(t *testing.T) {
	topo := TopologySpec{Kind: TopoRing, Switches: 4}
	tb, err := New(Config{Seed: 31, Shards: 4, Topology: &topo})
	if err != nil {
		t.Fatal(err)
	}
	addGroupHosts(t, tb, 24)
	addLoad := func() *ManyFlow {
		mf, err := tb.AddManyFlow(ManyFlowConfig{Flows: 12, Bytes: 2 << 10})
		if err != nil {
			t.Fatal(err)
		}
		return mf
	}
	addLoad()
	first, err := tb.Run(3 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	want := reportBytes(t, first)
	if tb.blockedTrunks() != 1 {
		t.Fatalf("ring blocked trunks = %d, want 1", tb.blockedTrunks())
	}
	for cycle := 0; cycle < 3; cycle++ {
		if allocs := testing.AllocsPerRun(5, func() {
			if err := tb.Reset(31); err != nil {
				t.Fatal(err)
			}
		}); allocs != 0 {
			t.Fatalf("cycle %d: sharded Reset allocates %.0f objects per run, want 0", cycle, allocs)
		}
		if tb.blockedTrunks() != 1 {
			t.Fatalf("cycle %d: blocked trunk count changed to %d", cycle, tb.blockedTrunks())
		}
		for i, ch := range tb.shards.channels {
			if n := ch.PendingDeposits(); n != 0 {
				t.Fatalf("cycle %d: trunk channel %d holds %d undrained deposits after Reset", cycle, i, n)
			}
		}
		mf := addLoad()
		rep, err := tb.Run(3 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if mf.Completed() != mf.Flows() {
			t.Fatalf("cycle %d: flows completed %d/%d", cycle, mf.Completed(), mf.Flows())
		}
		if got := reportBytes(t, rep); !bytes.Equal(got, want) {
			t.Fatalf("cycle %d: re-run after Reset diverged from first run", cycle)
		}
	}
}

// TestShardedRunForAndAuto covers the remaining entry points: RunFor
// drives the windowed engine without a controller, ShardsAuto resolves
// to a legal count, and a single-switch testbed accepts Shards >= 1 by
// collapsing to one shard.
func TestShardedRunForAndAuto(t *testing.T) {
	topo := TopologySpec{Kind: TopoStar, Switches: 4}
	tb, err := New(Config{Seed: 3, Shards: ShardsAuto, Topology: &topo})
	if err != nil {
		t.Fatal(err)
	}
	addGroupHosts(t, tb, 8)
	if _, err := tb.AddUDPStream(UDPStreamConfig{
		From: "h0001", To: "h0008", Port: 0x5400, Count: 10,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if got := tb.shards.count; got < 1 || got > 4 {
		t.Fatalf("auto shard count = %d, want 1..4", got)
	}

	// Single switch: the windowed engine with no trunks, driven by RunFor.
	single, err := New(Config{Seed: 4, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := single.AddHostGroup("h", 4); err != nil {
		t.Fatal(err)
	}
	if err := single.RunFor(50 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if single.shards.count != 1 {
		t.Fatalf("single-switch shard count = %d, want 1", single.shards.count)
	}
	if got, want := single.sched.Now(), 50*time.Millisecond; got != want {
		t.Fatalf("RunFor left the clock at %v, want %v", got, want)
	}
}

// TestShardConfigValidation pins the rejected configurations.
func TestShardConfigValidation(t *testing.T) {
	bad := []Config{
		{Shards: -2},
		{Shards: 2, Medium: MediumBus},
		{Shards: 2, TraceCapacity: 64},
		{Shards: 2, MetricsSampleInterval: time.Millisecond},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %+v accepted, want error", cfg)
		}
	}
}
