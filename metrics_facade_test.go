package virtualwire

import (
	"bytes"
	"reflect"
	"regexp"
	"sort"
	"strings"
	"testing"
	"time"
)

// runRetransmission builds and runs the tcp_retransmission.fsl scenario
// with the given config overrides applied on top of the standard setup.
func runRetransmission(t *testing.T, cfg Config) (*Testbed, RunReport) {
	t.Helper()
	script := readScript(t, "tcp_retransmission.fsl")
	tb, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := tb.AddNodesFromScript(script); err != nil {
		t.Fatal(err)
	}
	if err := tb.LoadScript(script); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddTCPBulk(TCPBulkConfig{
		From: "node1", To: "node2",
		SrcPort: 0x6000, DstPort: 0x4000, Bytes: 64 * 1024,
	}); err != nil {
		t.Fatal(err)
	}
	rep, err := tb.Run(30 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return tb, rep
}

// TestReportCarriesFaultsAndErrors asserts the enriched Report agrees
// with the legacy accessors it supersedes.
func TestReportCarriesFaultsAndErrors(t *testing.T) {
	tb, rep := runRetransmission(t, Config{Seed: 71})
	if len(rep.Faults) == 0 {
		t.Fatal("Report.Faults is empty on a fault-injecting scenario")
	}
	if !reflect.DeepEqual(rep.Faults, tb.InjectedFaults()) {
		t.Errorf("Report.Faults diverges from InjectedFaults():\n%v\nvs\n%v",
			rep.Faults, tb.InjectedFaults())
	}
	legacyErrs := tb.ScenarioResult().Errors
	if len(rep.Errors) != len(legacyErrs) {
		t.Fatalf("Report.Errors has %d entries, ScenarioResult().Errors %d",
			len(rep.Errors), len(legacyErrs))
	}
	for i := range rep.Errors {
		if !reflect.DeepEqual(rep.Errors[i], legacyErrs[i]) {
			t.Errorf("Report.Errors[%d] = %v, legacy %v", i, rep.Errors[i], legacyErrs[i])
		}
	}
	if !sort.SliceIsSorted(rep.Faults, func(i, j int) bool {
		if rep.Faults[i].At != rep.Faults[j].At {
			return rep.Faults[i].At < rep.Faults[j].At
		}
		return rep.Faults[i].Node < rep.Faults[j].Node
	}) {
		t.Errorf("Report.Faults not sorted by (At, Node): %v", rep.Faults)
	}
	if rep.Metrics.Instruments == 0 {
		t.Error("Report.Metrics gathered zero instruments")
	}
	if rep.Metrics.Totals["engine/faults_injected"] == 0 {
		t.Errorf("Totals[engine/faults_injected] = %v, want > 0", rep.Metrics.Totals)
	}
}

// TestMetricsSamplingEndToEnd enables the virtual-time sampler and
// checks the gathered series covers every layer the issue promises:
// scheduler, NIC, TCP and engine instruments.
func TestMetricsSamplingEndToEnd(t *testing.T) {
	tb, rep := runRetransmission(t, Config{
		Seed:                  72,
		MetricsSampleInterval: 10 * time.Millisecond,
	})
	s := tb.MetricsSeries()
	if len(s.Points) == 0 {
		t.Fatal("sampler recorded no points")
	}
	if s.Interval != 10*time.Millisecond {
		t.Errorf("series interval = %v", s.Interval)
	}
	if rep.Metrics.SampledPoints != len(s.Points) {
		t.Errorf("Report.Metrics.SampledPoints = %d, series has %d",
			rep.Metrics.SampledPoints, len(s.Points))
	}
	layers := map[string]bool{}
	for _, sm := range s.Final {
		layers[sm.Layer] = true
	}
	for _, want := range []string{"scheduler", "nic", "tcp", "engine", "ip", "switch"} {
		if !layers[want] {
			t.Errorf("final gather is missing layer %q (have %v)", want, layers)
		}
	}
	// Monotone counters: a sampled counter never decreases over time.
	type key struct{ node, layer, name string }
	last := map[key]float64{}
	for _, p := range s.Points {
		for _, sm := range p.Samples {
			if sm.Kind.String() != "counter" {
				continue
			}
			k := key{sm.Node, sm.Layer, sm.Name}
			if sm.Value < last[k] {
				t.Fatalf("counter %v decreased: %v -> %v at %v", k, last[k], sm.Value, p.At)
			}
			last[k] = sm.Value
		}
	}
	// Sampled points land on interval multiples of virtual time.
	for _, p := range s.Points {
		if p.At%(10*time.Millisecond) != 0 {
			t.Errorf("sample at %v is off the 10ms grid", p.At)
		}
	}
}

// TestPrometheusExportShape validates every emitted line against the
// name{node="...",layer="..."} value contract.
func TestPrometheusExportShape(t *testing.T) {
	tb, _ := runRetransmission(t, Config{Seed: 73})
	var buf bytes.Buffer
	if err := tb.WriteMetricsFile(&buf, "prom"); err != nil {
		t.Fatal(err)
	}
	line := regexp.MustCompile(`^vw_[a-zA-Z0-9_]+\{node="[^"]*",layer="[^"]*"(,le="[^"]+")?\} -?[0-9].*$`)
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) < 10 {
		t.Fatalf("prometheus export has only %d lines", len(lines))
	}
	for _, l := range lines {
		if !line.MatchString(l) {
			t.Errorf("malformed prometheus line: %q", l)
		}
	}
}

// TestNodeSnapshotUniform exercises the Node.Snapshot accessor across
// layers, including absent ones.
func TestNodeSnapshotUniform(t *testing.T) {
	tb, _ := runRetransmission(t, Config{Seed: 74})
	n, ok := tb.Node("node1")
	if !ok {
		t.Fatal("node1 missing")
	}
	wantLayers := []string{"engine", "nic", "ip", "tcp"}
	if got := n.SnapshotLayers(); !reflect.DeepEqual(got, wantLayers) {
		t.Errorf("SnapshotLayers = %v, want %v", got, wantLayers)
	}
	for _, layer := range wantLayers {
		sn, ok := n.Snapshot(layer)
		if !ok {
			t.Errorf("Snapshot(%q) not ok", layer)
			continue
		}
		if len(sn.Values) == 0 {
			t.Errorf("Snapshot(%q) has no values", layer)
		}
	}
	if _, ok := n.Snapshot("rll"); ok {
		t.Error("Snapshot(rll) ok on a testbed without the RLL")
	}
	if _, ok := n.Snapshot("rether"); ok {
		t.Error("Snapshot(rether) ok without Rether")
	}
	if _, ok := n.Snapshot("bogus"); ok {
		t.Error("Snapshot(bogus) ok")
	}
	// The uniform accessor agrees with the deprecated one-offs.
	es := n.EngineStats()
	sn, _ := n.Snapshot("engine")
	if v, ok := sn.Get("packets_intercepted"); !ok || v != float64(es.PacketsIntercepted) {
		t.Errorf("engine snapshot packets_intercepted = %v, EngineStats = %d", v, es.PacketsIntercepted)
	}
}

// TestWorkloadHistogram checks the UDP echo workload publishes its RTT
// histogram through the registry.
func TestWorkloadHistogram(t *testing.T) {
	tb, err := New(Config{Seed: 75})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddHost("a", "00:00:00:00:00:01", "10.0.0.1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.AddHost("b", "00:00:00:00:00:02", "10.0.0.2"); err != nil {
		t.Fatal(err)
	}
	echo, err := tb.AddUDPEcho(UDPEchoConfig{Client: "a", Server: "b", ServerPort: 7, Count: 20})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if echo.Received() != 20 {
		t.Fatalf("received %d/20", echo.Received())
	}
	for _, s := range tb.Metrics().Gather() {
		if s.Layer == "workload" && s.Name == "udp_echo_rtt_seconds" {
			if s.Count != 20 {
				t.Errorf("rtt histogram count = %d, want 20", s.Count)
			}
			return
		}
	}
	t.Error("udp_echo_rtt_seconds histogram not gathered")
}
